// Command outran-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	outran-bench [-scale 0.5] [-seed 1] [-ues 30] [-rbs 50] [-dur 6s] <id>...
//	outran-bench list
//	outran-bench all
//	outran-bench perf [-json BENCH_outran.json] [-baseline BENCH_outran.json] [-gate 0.10]
//
// Each id is a table/figure from the paper (fig3, fig4, fig7, fig8,
// fig12, fig13, fig14, fig15, fig16, fig17, fig18a-d, fig19, fig20,
// table1, table2). See DESIGN.md for the per-experiment index.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"outran/internal/experiments"
	"outran/internal/sim"
)

func main() {
	// The perf subcommand has its own flag set; dispatch before the
	// experiment flags are parsed.
	if len(os.Args) > 1 && os.Args[1] == "perf" {
		runPerf(os.Args[2:])
		return
	}
	scale := flag.Float64("scale", 1, "scale factor for UEs and duration (benches use <1)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	seeds := flag.Int("seeds", 0, "repetitions aggregated per data point (0 = default)")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	ues := flag.Int("ues", 0, "override UE count (0 = experiment default)")
	rbs := flag.Int("rbs", 0, "override resource blocks (0 = experiment default)")
	dur := flag.Duration("dur", 0, "override arrival window (0 = experiment default)")
	parallel := flag.Int("parallel", 0, "max runs executing concurrently (0 = GOMAXPROCS); never changes results")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}()
	}
	opt := experiments.Options{
		UEs:     *ues,
		RBs:     *rbs,
		Seed:    *seed,
		Seeds:   *seeds,
		Scale:   *scale,
		Workers: *parallel,
	}
	if *dur > 0 {
		opt.Duration = sim.Time(*dur)
	}
	ids := args
	switch args[0] {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	case "all":
		ids = experiments.IDs()
	}
	for _, id := range ids {
		f, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try 'outran-bench list')\n", id)
			os.Exit(2)
		}
		//outran:wallclock progress timer for the operator; never enters results
		start := time.Now()
		tables, err := f(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			t.Fprint(os.Stdout)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, id, t); err != nil {
					fmt.Fprintf(os.Stderr, "%s: csv: %v\n", id, err)
					os.Exit(1)
				}
			}
		}
		//outran:wallclock progress timer for the operator; never enters results
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: outran-bench [flags] <experiment-id>... | all | list")
	flag.PrintDefaults()
}

func writeCSV(dir, id string, t experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+"-"+t.Slug()+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
