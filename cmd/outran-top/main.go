// Command outran-top is a live terminal viewer for the KPI stream
// written by outran-sim -kpi. It tail-follows the JSONL file while the
// simulation runs, refreshing a per-cell table with the latest window
// quantiles and a sparkline of recent p99 FCT — top(1) for a RAN
// deployment.
//
// Usage:
//
//	outran-top kpi.jsonl                   follow the stream live
//	outran-top -refresh 500ms kpi.jsonl    faster refresh
//	outran-top -once kpi.jsonl             render one frame and exit
//
// The viewer only ever reads complete lines, so it is safe to point at
// a file the simulator (or a resumed run, which truncates the stream
// back to its checkpoint offset) is still appending to. Truncation is
// detected and the view rebuilt from the start of the file.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"outran/internal/obs"
)

func main() {
	refresh := flag.Duration("refresh", time.Second, "refresh interval (wall clock)")
	once := flag.Bool("once", false, "render a single frame from the current file contents and exit")
	history := flag.Int("history", 32, "sparkline length (number of recent windows)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: outran-top [-refresh d] [-once] [-history n] <kpi.jsonl>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *history < 2 {
		*history = 2
	}
	v := newViewer(flag.Arg(0), *history)
	if *once {
		if err := v.poll(); err != nil {
			fatal(err)
		}
		v.render(os.Stdout, false)
		return
	}
	for {
		if err := v.poll(); err != nil {
			fatal(err)
		}
		v.render(os.Stdout, true)
		//outran:simtime live-view refresh pacing; reads files written by a run, never enters results
		time.Sleep(*refresh)
	}
}

// cellView is the retained state of one table row: the most recent
// record plus the p99 history backing the sparkline.
type cellView struct {
	last obs.KPIRecord
	p99s []float64
}

// viewer tails the KPI file and folds records into per-cell views. It
// consumes only complete lines — a partial trailing line stays in rem
// until the writer finishes it.
type viewer struct {
	path    string
	history int

	off   int64
	rem   []byte
	cells map[int]*cellView
	recs  int
}

func newViewer(path string, history int) *viewer {
	return &viewer{path: path, history: history, cells: map[int]*cellView{}}
}

// poll reads everything appended since the last call. A file smaller
// than the consumed offset means the writer truncated it (a resumed
// run rewinding to its checkpoint); the view restarts from scratch.
func (v *viewer) poll() error {
	f, err := os.Open(v.path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() < v.off {
		v.off, v.rem = 0, nil
		v.cells = map[int]*cellView{}
		v.recs = 0
	}
	if _, err := f.Seek(v.off, io.SeekStart); err != nil {
		return err
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return err
	}
	v.off += int64(len(buf))
	data := append(v.rem, buf...)
	for {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		var rec obs.KPIRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn or foreign line; skip rather than die mid-run
		}
		v.fold(rec)
	}
	v.rem = data
	return nil
}

func (v *viewer) fold(rec obs.KPIRecord) {
	v.recs++
	cv := v.cells[rec.Cell]
	if cv == nil {
		cv = &cellView{}
		v.cells[rec.Cell] = cv
	}
	cv.last = rec
	cv.p99s = append(cv.p99s, rec.WinP99Ms)
	if len(cv.p99s) > v.history {
		cv.p99s = cv.p99s[len(cv.p99s)-v.history:]
	}
}

// render draws one frame. In follow mode the frame starts with an ANSI
// home+clear so successive frames overwrite in place.
func (v *viewer) render(w io.Writer, live bool) {
	var b strings.Builder
	if live {
		b.WriteString("\x1b[H\x1b[2J")
	}
	ids := make([]int, 0, len(v.cells))
	for id := range v.cells {
		if id != obs.RollupCell {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	var t float64
	if all, ok := v.cells[obs.RollupCell]; ok {
		t = all.last.T.Seconds()
	} else if len(ids) > 0 {
		t = v.cells[ids[0]].last.T.Seconds()
	}
	fmt.Fprintf(&b, "outran-top  %s  t=%.1fs  %d cells  %d records\n",
		v.path, t, len(ids), v.recs)
	if v.recs == 0 {
		b.WriteString("waiting for KPI records...\n")
		io.WriteString(w, b.String())
		return
	}
	fmt.Fprintf(&b, "%5s %9s %10s %10s %7s %6s %5s %9s %6s  %s\n",
		"CELL", "FLOWS/W", "P50 ms", "P99 ms", "SE", "FAIR", "ACT", "QUEUE B", "RETX", "P99 TREND")
	for _, id := range ids {
		writeRow(&b, fmt.Sprintf("%5d", id), v.cells[id])
	}
	if all, ok := v.cells[obs.RollupCell]; ok {
		writeRow(&b, "  ALL", all)
	}
	io.WriteString(w, b.String())
}

func writeRow(b *strings.Builder, label string, cv *cellView) {
	r := cv.last
	var queue int64
	for _, q := range r.QueueBytes {
		queue += q
	}
	fmt.Fprintf(b, "%s %9d %10.2f %10.2f %7.3f %6.3f %5d %9d %5.1f%%  %s\n",
		label, r.WinFlows, r.WinP50Ms, r.WinP99Ms, r.SE, r.Fairness,
		r.ActiveFlows, queue, 100*r.HARQRetxRate, sparkline(cv.p99s))
}

// sparkline renders values as a fixed ramp scaled to the window's own
// maximum, so each row shows its trend shape rather than a cross-cell
// comparison.
func sparkline(vals []float64) string {
	ramp := []rune("▁▂▃▄▅▆▇█")
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * 7)
			if i > 7 {
				i = 7
			}
		}
		b.WriteRune(ramp[i])
	}
	return b.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
