// Command outran-sim runs a single-cell downlink simulation with the
// chosen scheduler and prints the FCT / spectral-efficiency / fairness
// summary — the quickest way to poke at the system.
//
// Example:
//
//	outran-sim -sched OutRAN -load 0.6 -ues 20 -rbs 50 -dur 8s
//	outran-sim -sched PF -load 0.8 -dist websearch -numerology 1
//	outran-sim -sched OutRAN -trace run.jsonl -json > summary.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"outran/internal/metrics"
	"outran/internal/obs"
	"outran/internal/phy"
	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

func main() {
	sched := flag.String("sched", "OutRAN", "scheduler: PF MT RR SRJF PSS CQA OutRAN StrictMLFQ")
	load := flag.Float64("load", 0.6, "offered cell load (fraction of capacity)")
	ues := flag.Int("ues", 20, "number of UEs")
	rbs := flag.Int("rbs", 50, "resource blocks")
	durFlag := flag.Duration("dur", 0, "arrival window (default 8s)")
	distName := flag.String("dist", "lte", "flow size distribution: lte | mirage | websearch")
	eps := flag.Float64("eps", 0.2, "OutRAN relaxation threshold")
	mu := flag.Int("numerology", 0, "5G numerology 0-3 (0 = LTE grid)")
	am := flag.Bool("am", false, "use RLC AM instead of UM")
	seed := flag.Uint64("seed", 1, "simulation seed")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file (see cmd/outran-trace)")
	jsonOut := flag.Bool("json", false, "print the run summary as JSON instead of text")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	dist, ok := workload.ByName(*distName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *distName)
		os.Exit(2)
	}
	var cfg ran.Config
	if *mu > 0 {
		cfg = ran.Default5GConfig(phy.Numerology(*mu))
	} else {
		cfg = ran.DefaultLTEConfig()
	}
	cfg.NumUEs = *ues
	cfg.Grid.NumRB = *rbs
	cfg.Scheduler = ran.SchedulerKind(*sched)
	cfg.OutRAN.Epsilon = *eps
	cfg.Seed = *seed
	cfg.QoSShortFlows = cfg.Scheduler == ran.SchedPSS || cfg.Scheduler == ran.SchedCQA
	if *am {
		cfg.RLC = ran.AM
	}

	cell, err := ran.NewCell(cfg)
	if err != nil {
		fatal(err)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		tracer = obs.NewTracer(obs.NewJSONLSink(f))
		cell.SetTracer(tracer)
	}
	dur := sim.Time(*durFlag)
	if dur <= 0 {
		dur = 8 * sim.Second
	}
	flows, err := workload.Poisson(workload.PoissonConfig{
		Dist:            dist,
		NumUEs:          cfg.NumUEs,
		Load:            *load,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(*seed+7919))
	if err != nil {
		fatal(err)
	}
	cell.ScheduleWorkload(flows, ran.FlowOptions{})
	cell.Eng.At(dur, cell.Tracker.Freeze)
	cell.Run(dur + 12*sim.Second)
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cell.Summary()); err != nil {
			fatal(err)
		}
	} else {
		printSummary(cell, cfg, *load, *distName)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

func printSummary(cell *ran.Cell, cfg ran.Config, load float64, distName string) {
	st := cell.CollectStats()
	fmt.Printf("scheduler      %s (RLC %v, %d UEs, %d RBs, load %.2f, dist %s)\n",
		cell.Scheduler().Name(), cfg.RLC, cfg.NumUEs, cfg.Grid.NumRB, load, distName)
	fmt.Printf("flows          %d started, %d completed\n", st.FlowsStarted, st.FlowsCompleted)
	pr := func(label string, s metrics.Stats) {
		fmt.Printf("%-14s mean %8.1fms  p50 %8.1fms  p95 %8.1fms  p99 %8.1fms  (n=%d)\n",
			label, s.Mean.Milliseconds(), s.P50.Milliseconds(),
			s.P95.Milliseconds(), s.P99.Milliseconds(), s.Count)
	}
	pr("FCT overall", cell.FCT.Overall())
	pr("FCT short", cell.FCT.ByClass(metrics.Short))
	pr("FCT medium", cell.FCT.ByClass(metrics.Medium))
	pr("FCT long", cell.FCT.ByClass(metrics.Long))
	fmt.Printf("spectral eff   %.3f bit/s/Hz\n", st.MeanSpectralEff)
	fmt.Printf("fairness       %.3f (Jain, eq. 3)\n", st.MeanFairnessIndex)
	fmt.Printf("queue delay    %.2fms avg, %.2fms short flows\n",
		cell.Delay.Mean().Milliseconds(), cell.Delay.MeanShort().Milliseconds())
	fmt.Printf("mean SRTT      %.1fms\n", st.MeanSRTT.Milliseconds())
	fmt.Printf("losses         %d buffer drops, %d HARQ failures, %d reassembly discards, %d decipher failures\n",
		st.BufferDrops, st.HARQFailures, st.ReassemblyDrops, st.DecipherFailures)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
