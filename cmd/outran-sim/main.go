// Command outran-sim runs a downlink simulation with the chosen
// scheduler and prints the FCT / spectral-efficiency / fairness
// summary — the quickest way to poke at the system. With -cells N it
// becomes a multi-cell deployment executed across a bounded worker
// pool (-parallel), optionally with a scripted §7 inter-cell handover.
//
// Example:
//
//	outran-sim -sched OutRAN -load 0.6 -ues 20 -rbs 50 -dur 8s
//	outran-sim -sched PF -load 0.8 -dist websearch -numerology 1
//	outran-sim -sched OutRAN -trace run.jsonl -json > summary.json
//	outran-sim -cells 4 -parallel 4 -json
//	outran-sim -cells 2 -handover 3s -v
//	outran-sim -workload diurnal -trace-out w.jsonl
//	outran-sim -workload-trace w.jsonl   # byte-identical replay
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"outran/internal/deploy"
	"outran/internal/metrics"
	"outran/internal/obs"
	"outran/internal/phy"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/workload"
)

// drain is the post-arrival run time that lets in-flight flows finish.
const drain = 12 * sim.Second

func main() {
	sched := flag.String("sched", "OutRAN", "scheduler: PF MT RR SRJF PSS CQA OutRAN StrictMLFQ")
	load := flag.Float64("load", 0.6, "offered cell load (fraction of capacity)")
	ues := flag.Int("ues", 20, "number of UEs per cell")
	rbs := flag.Int("rbs", 50, "resource blocks")
	durFlag := flag.Duration("dur", 0, "arrival window (default 8s)")
	distName := flag.String("dist", "lte", "flow size distribution: lte | mirage | websearch")
	workloadName := flag.String("workload", "", "workload scenario: "+strings.Join(workload.ScenarioNames(), " | ")+" (default: steady poisson from -dist/-load)")
	traceOut := flag.String("trace-out", "", "record the generated workload to this JSONL trace (per cell with -cells: name.cellN.ext); replay with -workload-trace")
	workloadTrace := flag.String("workload-trace", "", "replay a workload trace recorded with -trace-out instead of generating arrivals (per cell with -cells)")
	eps := flag.Float64("eps", 0.2, "OutRAN relaxation threshold")
	mu := flag.Int("numerology", 0, "5G numerology 0-3 (0 = LTE grid)")
	am := flag.Bool("am", false, "use RLC AM instead of UM")
	seed := flag.Uint64("seed", 1, "simulation seed (multi-cell: deployment master seed)")
	cells := flag.Int("cells", 1, "number of cells (multi-cell deployment runtime)")
	parallel := flag.Int("parallel", 0, "max cells executing concurrently (0 = GOMAXPROCS); never changes results")
	handover := flag.Duration("handover", 0, "with -cells >= 2: migrate UE 0 from cell 0 to cell 1 at this sim time (§7 flow-state transfer)")
	ckEvery := flag.Duration("checkpoint-every", 0, "checkpoint every cell's full state at this sim-time cadence (0 = off)")
	ckDir := flag.String("checkpoint-dir", "outran-ckpt", "checkpoint directory (with -checkpoint-every / -resume)")
	resume := flag.Bool("resume", false, "resume a killed checkpointed run from -checkpoint-dir (pass the SAME flags as the original run)")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file (per cell with -cells: name.cellN.ext)")
	kpiEvery := flag.Duration("kpi-every", 0, "sample per-cell KPI records at this sim-time cadence (0 = off)")
	kpiPath := flag.String("kpi", "", "write the KPI time-series JSONL to this file (needs -kpi-every; read with outran-trace kpi or outran-top)")
	profileRun := flag.Bool("profile", false, "attribute wall ns/TTI to phy/mac/rlc/pdcp/obs phases (single cell; shown in the summary, never in byte-compared outputs)")
	streamFCT := flag.Bool("stream-fct", false, "record FCTs into bounded-memory streaming histograms instead of retaining per-flow samples")
	exactFCT := flag.Bool("exact-fct", false, "with -cells > 1: opt back into exact per-flow FCT samples (capped per cell; deployments stream by default)")
	jsonOut := flag.Bool("json", false, "print the run summary as JSON instead of text")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if _, ok := workload.ByName(*distName); !ok {
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *distName)
		os.Exit(2)
	}
	var base ran.Config
	if *mu > 0 {
		base = ran.Default5GConfig(phy.Numerology(*mu))
	} else {
		base = ran.DefaultLTEConfig()
	}
	cfg := base.
		WithTopology(*ues, *rbs).
		ForScheduler(ran.SchedulerKind(*sched)).
		WithSeed(*seed)
	cfg.OutRAN.Epsilon = *eps
	if *am {
		cfg.RLC = ran.AM
	}
	cfg.KPIEvery = sim.Time(*kpiEvery)
	cfg.StreamFCT = *streamFCT

	// The workload rides on the config: a scenario spec, a plain Poisson
	// spec, or a trace replay. The harness pulls from the built Source.
	var spec workload.Spec
	var wlDesc string
	switch {
	case *workloadTrace != "":
		if *workloadName != "" {
			fatal(fmt.Errorf("-workload-trace and -workload are mutually exclusive (the trace fixes the workload)"))
		}
		spec = workload.ReplaySpec(*workloadTrace)
		wlDesc = "trace:" + filepath.Base(*workloadTrace)
	case *workloadName != "":
		var ok bool
		spec, ok = workload.Scenario(*workloadName, *distName, *load)
		if !ok {
			fatal(fmt.Errorf("unknown workload scenario %q (have: %s)", *workloadName, strings.Join(workload.ScenarioNames(), " ")))
		}
		wlDesc = *workloadName + "/" + *distName
	default:
		spec = workload.PoissonSpec(*distName, *load)
		wlDesc = "poisson/" + *distName
	}
	cfg = cfg.WithWorkload(spec)

	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	if *kpiPath != "" && *kpiEvery <= 0 {
		fatal(fmt.Errorf("-kpi needs -kpi-every > 0"))
	}
	dur := sim.Time(*durFlag)
	if dur <= 0 {
		dur = 8 * sim.Second
	}

	ckcfg := deploy.CheckpointConfig{Every: sim.Time(*ckEvery)}
	if *ckEvery > 0 || *resume {
		ckcfg.Dir = *ckDir
	}
	if *cells > 1 {
		if *profileRun {
			fatal(fmt.Errorf("-profile needs -cells 1 (phase timings are per-cell wall clock)"))
		}
		if *exactFCT && *streamFCT {
			fatal(fmt.Errorf("-exact-fct and -stream-fct are mutually exclusive"))
		}
		runDeployment(cfg, *load, dur, *cells, *parallel, sim.Time(*handover), ckcfg, *resume, *exactFCT, *traceOut, *workloadTrace, *tracePath, *kpiPath, *jsonOut, wlDesc)
	} else {
		if *handover > 0 {
			fatal(fmt.Errorf("-handover needs -cells >= 2"))
		}
		if ckcfg.Enabled() {
			runSingleCheckpointed(cfg, *load, dur, ckcfg, *resume, *traceOut, *tracePath, *kpiPath, *profileRun, *jsonOut, wlDesc)
		} else {
			runSingle(cfg, *load, dur, *traceOut, *tracePath, *kpiPath, *profileRun, *jsonOut, wlDesc)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
}

// runSingle is the classic one-cell run through the shared harness.
// With -kpi-every the run is driven in segments so the cell is sampled
// at every KPI instant; each sample emits one cell-0 record (a
// single-cell run writes no deployment roll-up line).
func runSingle(cfg ran.Config, load float64, dur sim.Time, traceOut, tracePath, kpiPath string, profileRun, jsonOut bool, wlDesc string) {
	h := ran.Harness{
		Config: cfg,
		Window: dur,
		Drain:  drain,
	}
	var tracer *obs.Tracer
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		tracer = obs.NewTracer(obs.NewJSONLSink(f))
		h.Tracer = tracer
	}
	var wf *os.File
	if traceOut != "" {
		var err error
		if wf, err = os.Create(traceOut); err != nil {
			fatal(err)
		}
		h.WorkloadTrace = wf
	}
	cell, err := h.Build()
	if err != nil {
		fatal(err)
	}
	// The workload trace is fully written while the harness schedules
	// the source; close it before the cell runs.
	if wf != nil {
		if err := wf.Close(); err != nil {
			fatal(fmt.Errorf("workload trace: %w", err))
		}
	}
	if profileRun {
		cell.SetPhaseProfiler(obs.NewPhaseProfiler())
	}
	total := h.Total()
	var kf *deploy.KPIFile
	if kpiPath != "" {
		if kf, err = deploy.OpenKPIFile(kpiPath, cfg.KPIEvery); err != nil {
			fatal(err)
		}
	}
	if cfg.KPIEvery > 0 {
		for t := cfg.KPIEvery; t <= total; t += cfg.KPIEvery {
			cell.Run(t)
			sampleSingleKPI(cell, t, kf)
		}
	}
	cell.Run(total)
	if kf != nil {
		if err := kf.Close(); err != nil {
			fatal(fmt.Errorf("kpi: %w", err))
		}
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cell.Summary()); err != nil {
			fatal(err)
		}
	} else {
		printSummary(cell, cfg, load, wlDesc)
	}
}

// sampleSingleKPI folds one KPI instant of a single-cell run and
// appends the record to the stream (when one is open).
func sampleSingleKPI(cell *ran.Cell, t sim.Time, kf *deploy.KPIFile) {
	s := cell.SampleKPI(t)
	s.Rec.Cell = 0
	if kf != nil {
		kf.Emit(&s.Rec)
	}
}

// runSingleCheckpointed is the one-cell run with periodic
// checkpointing: the harness is driven in segments, snapshotting the
// complete cell state at every cadence instant. -resume restores from
// the newest checkpoint, truncates the trace back to its offset, and
// continues — the summary and trace come out byte-identical to an
// uninterrupted run.
func runSingleCheckpointed(cfg ran.Config, load float64, dur sim.Time, ckcfg deploy.CheckpointConfig, resume bool, traceOut, tracePath, kpiPath string, profileRun, jsonOut bool, wlDesc string) {
	ckcfg = ckcfg.WithDefaults()
	total := dur + drain
	ck := deploy.NewCheckpointer(ckcfg, 0)
	var cell *ran.Cell
	var tf *deploy.TraceFile
	var kf *deploy.KPIFile
	var from sim.Time
	if resume {
		_, at, err := deploy.LatestCheckpoint(ckcfg.Dir, 0)
		if err != nil {
			fatal(err)
		}
		var meta deploy.CheckpointMeta
		cell, tf, meta, err = ck.Restore(cfg, at, tracePath)
		if err != nil {
			fatal(err)
		}
		if kpiPath != "" {
			if kf, err = deploy.ResumeKPIFile(kpiPath, cfg.KPIEvery, meta.KPIOffset); err != nil {
				fatal(err)
			}
		}
		from = at
	} else {
		h := ran.Harness{
			Config:    cfg,
			Window:    dur,
			Drain:     drain,
			Snapshots: true,
		}
		var off func() int64
		if tracePath != "" {
			var err error
			if tf, err = deploy.OpenTraceFile(tracePath); err != nil {
				fatal(err)
			}
			h.Tracer = tf.Tracer()
			off = tf.Offset
		}
		var wf *os.File
		if traceOut != "" {
			var err error
			if wf, err = os.Create(traceOut); err != nil {
				fatal(err)
			}
			h.WorkloadTrace = wf
		}
		var err error
		if cell, err = h.Build(); err != nil {
			fatal(err)
		}
		// The full workload trace is on disk once Build returns, so a
		// later crash-resume never needs to re-emit it.
		if wf != nil {
			if err := wf.Close(); err != nil {
				fatal(fmt.Errorf("workload trace: %w", err))
			}
		}
		if err := ck.Attach(cell, off); err != nil {
			fatal(err)
		}
		if kpiPath != "" {
			if kf, err = deploy.OpenKPIFile(kpiPath, cfg.KPIEvery); err != nil {
				fatal(err)
			}
		}
	}
	if profileRun {
		cell.SetPhaseProfiler(obs.NewPhaseProfiler())
	}
	// Drive the cell through the sorted union of checkpoint and KPI
	// instants. At a shared instant KPI sampling precedes the checkpoint
	// write, so the recorded offset includes that instant's record and a
	// resumed run re-emits exactly the remaining suffix.
	ckAt := map[sim.Time]bool{}
	kpiAt := map[sim.Time]bool{}
	var times []sim.Time
	for _, t := range ckcfg.Times(total) {
		ckAt[t] = true
		times = append(times, t)
	}
	if cfg.KPIEvery > 0 {
		for t := cfg.KPIEvery; t <= total; t += cfg.KPIEvery {
			kpiAt[t] = true
			if !ckAt[t] {
				times = append(times, t)
			}
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	}
	for _, t := range times {
		if t <= from {
			continue
		}
		cell.Run(t)
		if kpiAt[t] {
			sampleSingleKPI(cell, t, kf)
		}
		if ckAt[t] {
			kpiOff := int64(-1)
			if kf != nil {
				kpiOff = kf.Offset()
			}
			if err := ck.Write(0, 0, kpiOff); err != nil {
				fatal(err)
			}
		}
	}
	cell.Run(total)
	if kf != nil {
		if err := kf.Close(); err != nil {
			fatal(fmt.Errorf("kpi: %w", err))
		}
	}
	if tf != nil {
		if err := tf.Close(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cell.Summary()); err != nil {
			fatal(err)
		}
	} else {
		printSummary(cell, cfg, load, wlDesc)
	}
}

// runDeployment runs the multi-cell deployment runtime.
func runDeployment(cfg ran.Config, load float64, dur sim.Time, cells, parallel int, handoverAt sim.Time, ckcfg deploy.CheckpointConfig, resume, exactFCT bool, traceOut, workloadTrace, tracePath, kpiPath string, jsonOut bool, wlDesc string) {
	dcfg := deploy.Config{
		Cells:      cells,
		Workers:    parallel,
		Cell:       cfg,
		Window:     dur,
		Drain:      drain,
		Seed:       cfg.Seed,
		ExactFCT:   exactFCT,
		Checkpoint: ckcfg,
		KPIPath:    kpiPath,
	}
	if traceOut != "" {
		dcfg.WorkloadTracePathFor = func(i int) string { return cellTracePath(traceOut, i) }
	}
	if workloadTrace != "" {
		// Each cell replays its own per-cell trace file, the ones a
		// -cells N -trace-out run wrote.
		dcfg.PerCell = func(i int, c ran.Config) ran.Config {
			return c.WithWorkload(workload.ReplaySpec(cellTracePath(workloadTrace, i)))
		}
	}
	if handoverAt > 0 {
		dcfg.Handovers = []deploy.Handover{{
			At: handoverAt, UE: 0, From: 0, To: 1, ContinueBytes: 256 << 10,
		}}
		if ckcfg.Enabled() {
			// A checkpoint cannot serialise the continuation's live
			// connection; transfer the §7 flow state only.
			dcfg.Handovers[0].ContinueBytes = 0
			fmt.Fprintln(os.Stderr, "note: -checkpoint-every disables the handover continuation flow (flow-state transfer still happens)")
		}
	}
	var tracers []*obs.Tracer
	if tracePath != "" && ckcfg.Enabled() {
		// Checkpointed runs need runtime-owned traces: crash recovery
		// truncates them back to the checkpoint offset.
		dcfg.TracePathFor = func(i int) string { return cellTracePath(tracePath, i) }
	} else if tracePath != "" {
		dcfg.TracerFor = func(i int) *obs.Tracer {
			f, err := os.Create(cellTracePath(tracePath, i))
			if err != nil {
				fatal(err)
			}
			t := obs.NewTracer(obs.NewJSONLSink(f))
			tracers = append(tracers, t)
			return t
		}
		// Tracer creation runs inside the build pool; serialize it.
		dcfg.Workers = 1
		if parallel != 0 && parallel != 1 {
			fmt.Fprintln(os.Stderr, "note: -trace forces -parallel 1 (per-cell traces stay deterministic either way)")
		}
	}
	run := deploy.Run
	if resume {
		run = deploy.Resume
	}
	res, err := run(dcfg)
	if err != nil {
		fatal(err)
	}
	for _, t := range tracers {
		if err := t.Close(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	printDeployment(res, cfg, load, wlDesc)
}

// cellTracePath derives the per-cell trace filename: run.jsonl ->
// run.cell0.jsonl.
func cellTracePath(path string, cell int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.cell%d%s", strings.TrimSuffix(path, ext), cell, ext)
}

func printDeployment(res *deploy.Result, cfg ran.Config, load float64, distName string) {
	agg := res.Aggregate
	fmt.Printf("deployment     %d cells (sched %s, RLC %v, %d UEs/cell, %d RBs, load %.2f, dist %s, seed %d)\n",
		agg.Cells, cfg.Scheduler, cfg.RLC, cfg.NumUEs, cfg.Grid.NumRB, load, distName, agg.Seed)
	for _, c := range res.Cells {
		s := c.Summary
		fmt.Printf("  cell %-2d seed %-20d flows %4d/%-4d  FCT mean %8.1fms p95 %8.1fms  SE %.3f  fair %.3f\n",
			c.Cell, s.Seed, s.Counters.FlowsStarted, s.Counters.FlowsCompleted,
			s.FCTOverall.Mean.Milliseconds(), s.FCTOverall.P95.Milliseconds(),
			s.Counters.MeanSpectralEff, s.Counters.MeanFairnessIndex)
	}
	if agg.HandoversApplied > 0 {
		fmt.Printf("handovers      %d applied, %d flows transferred (%d B of §7 flow state)\n",
			agg.HandoversApplied, agg.FlowsTransferred, agg.FlowsTransferred*41)
	}
	fmt.Printf("flows          %d started, %d completed\n", agg.Counters.FlowsStarted, agg.Counters.FlowsCompleted)
	pr := func(label string, s metrics.Stats) {
		fmt.Printf("%-14s mean %8.1fms  p50 %8.1fms  p95 %8.1fms  p99 %8.1fms  (n=%d)\n",
			label, s.Mean.Milliseconds(), s.P50.Milliseconds(),
			s.P95.Milliseconds(), s.P99.Milliseconds(), s.Count)
	}
	pr("FCT overall", agg.FCTOverall)
	pr("FCT short", agg.FCTShort)
	pr("FCT medium", agg.FCTMedium)
	pr("FCT long", agg.FCTLong)
	fmt.Printf("spectral eff   %.3f bit/s/Hz (mean over cells)\n", agg.Counters.MeanSpectralEff)
	fmt.Printf("fairness       %.3f (Jain, eq. 3, mean over cells)\n", agg.Counters.MeanFairnessIndex)
}

func printSummary(cell *ran.Cell, cfg ran.Config, load float64, distName string) {
	st := cell.CollectStats()
	fmt.Printf("scheduler      %s (RLC %v, %d UEs, %d RBs, load %.2f, dist %s)\n",
		cell.Scheduler().Name(), cfg.RLC, cfg.NumUEs, cfg.Grid.NumRB, load, distName)
	fmt.Printf("flows          %d started, %d completed\n", st.FlowsStarted, st.FlowsCompleted)
	pr := func(label string, s metrics.Stats) {
		fmt.Printf("%-14s mean %8.1fms  p50 %8.1fms  p95 %8.1fms  p99 %8.1fms  (n=%d)\n",
			label, s.Mean.Milliseconds(), s.P50.Milliseconds(),
			s.P95.Milliseconds(), s.P99.Milliseconds(), s.Count)
	}
	pr("FCT overall", cell.FCT.Overall())
	pr("FCT short", cell.FCT.ByClass(metrics.Short))
	pr("FCT medium", cell.FCT.ByClass(metrics.Medium))
	pr("FCT long", cell.FCT.ByClass(metrics.Long))
	fmt.Printf("spectral eff   %.3f bit/s/Hz\n", st.MeanSpectralEff)
	fmt.Printf("fairness       %.3f (Jain, eq. 3)\n", st.MeanFairnessIndex)
	fmt.Printf("queue delay    %.2fms avg, %.2fms short flows\n",
		cell.Delay.Mean().Milliseconds(), cell.Delay.MeanShort().Milliseconds())
	fmt.Printf("mean SRTT      %.1fms\n", st.MeanSRTT.Milliseconds())
	fmt.Printf("losses         %d buffer drops, %d HARQ failures, %d reassembly discards, %d decipher failures\n",
		st.BufferDrops, st.HARQFailures, st.ReassemblyDrops, st.DecipherFailures)
	if phases := cell.PhaseProfiler().NsPerTTI(); len(phases) > 0 {
		names := make([]string, 0, len(phases))
		for name := range phases {
			names = append(names, name)
		}
		sort.Strings(names)
		var total float64
		for _, name := range names {
			total += phases[name]
		}
		fmt.Printf("phase profile  %.0f ns/TTI instrumented", total)
		for _, name := range names {
			fmt.Printf("  %s %.0f", name, phases[name])
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
