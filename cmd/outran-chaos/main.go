// Command outran-chaos sweeps randomized fault schedules across seeds
// and schedulers with the runtime invariant monitor attached: a
// robustness gate for the whole simulator, and a measure of how
// gracefully PF and OutRAN degrade under RAN faults.
//
// Usage:
//
//	outran-chaos [-seeds 20] [-seed 1] [-ues 10] [-rbs 25] [-dur 2s]
//	             [-load 0.6] [-intensity 1] [-um] [-parallel 0] [-v] [-json]
//
// For every scheduler (PF, OutRAN) and seed, the tool runs the same
// workload twice — a fault-free baseline and a chaos run under a
// seed-derived fault plan — and reports the FCT degradation alongside
// the fault activity (RLFs, abandoned AM PDUs, injected losses). Any
// invariant violation is printed and makes the exit status 1.
//
// The (scheduler, seed) jobs execute across a bounded worker pool
// (-parallel, default GOMAXPROCS); every run is an independent
// single-threaded simulation and all reporting folds in job order, so
// the worker count changes wall-clock time only.
//
// With -json, one machine-readable record per run (scheduler, seed,
// phase, FCT stats, and the shared counter schema from ran.Stats) is
// written to stdout as JSONL; human-readable output and violations go
// to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"outran/internal/deploy"
	"outran/internal/fault"
	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/sim"
	"outran/internal/workload"
)

// chaosRecord is the -json output schema for one monitored run: the
// consolidated ran.Stats counter schema (metrics.RunCounters) plus the
// FCT distribution, one JSON object per line.
type chaosRecord struct {
	Scheduler string        `json:"scheduler"`
	Seed      uint64        `json:"seed"`
	Phase     string        `json:"phase"` // "baseline" or "chaos"
	Flows     int           `json:"flows"`
	FCT       metrics.Stats `json:"fct"`
	Counters  ran.Stats     `json:"counters"`
	Faults    int           `json:"fault_events"`
}

func record(sched ran.SchedulerKind, seed uint64, phase string, res fault.Result) chaosRecord {
	fcts := make([]sim.Time, 0, len(res.Samples))
	for _, s := range res.Samples {
		fcts = append(fcts, s.FCT)
	}
	return chaosRecord{
		Scheduler: string(sched),
		Seed:      seed,
		Phase:     phase,
		Flows:     len(res.Samples),
		FCT:       metrics.ComputeStats(fcts),
		Counters:  res.Stats,
		Faults:    len(res.Plan),
	}
}

// job is one (scheduler, seed) sweep point; base and chaos are filled
// in by the worker pool, everything else is fixed up front.
type job struct {
	sched       ran.SchedulerKind
	seed        uint64
	base, chaos fault.Result
	err         error
}

func main() {
	seeds := flag.Int("seeds", 20, "number of seeds per scheduler")
	seed := flag.Uint64("seed", 1, "first seed")
	ues := flag.Int("ues", 10, "UE count")
	rbs := flag.Int("rbs", 25, "resource blocks")
	dur := flag.Duration("dur", 2*time.Second, "workload arrival window")
	load := flag.Float64("load", 0.6, "offered load vs. effective capacity")
	intensity := flag.Float64("intensity", 1, "fault plan intensity (arrival-rate scale)")
	scenario := flag.String("scenario", "", "workload scenario: "+strings.Join(workload.ScenarioNames(), " | ")+" (default: steady poisson at -load)")
	um := flag.Bool("um", false, "RLC UM instead of AM")
	parallel := flag.Int("parallel", 0, "max runs executing concurrently (0 = GOMAXPROCS); never changes results")
	verbose := flag.Bool("v", false, "per-seed detail")
	jsonOut := flag.Bool("json", false, "emit one JSON record per run (stdout) instead of the text report")
	flag.Parse()

	mode := ran.AM
	if *um {
		mode = ran.UM
	}
	var spec workload.Spec
	if *scenario != "" {
		var ok bool
		if spec, ok = workload.Scenario(*scenario, "lte", *load); !ok {
			fmt.Fprintf(os.Stderr, "unknown workload scenario %q (have: %s)\n",
				*scenario, strings.Join(workload.ScenarioNames(), " "))
			os.Exit(2)
		}
	}
	if !*jsonOut {
		wl := "poisson"
		if *scenario != "" {
			wl = *scenario
		}
		fmt.Printf("chaos sweep: %d seeds x {PF, OutRAN}, %d UEs, %d RBs, %v window, load %.2f, workload %s, intensity %.2f, RLC %v\n\n",
			*seeds, *ues, *rbs, *dur, *load, wl, *intensity, mode)
	}

	// Lay the jobs out in report order, run them across the pool into
	// their own slots, then fold serially in that same order: the
	// worker count cannot change any output byte.
	scheds := []ran.SchedulerKind{ran.SchedPF, ran.SchedOutRAN}
	ns := *seeds
	jobs := make([]job, 0, len(scheds)*ns)
	for _, sched := range scheds {
		for i := 0; i < ns; i++ {
			jobs = append(jobs, job{sched: sched, seed: *seed + uint64(i)})
		}
	}
	// Per-job errors land in the job slots and are reported seed by
	// seed below; the pool-level error would duplicate them.
	_ = deploy.ForEach(len(jobs), *parallel, func(i int) error {
		j := &jobs[i]
		j.base, j.err = runOne(j.sched, mode, spec, *ues, *rbs, sim.Time(*dur), *load, 0, j.seed)
		if j.err == nil {
			j.chaos, j.err = runOne(j.sched, mode, spec, *ues, *rbs, sim.Time(*dur), *load, *intensity, j.seed)
		}
		return j.err
	})

	violations := 0
	enc := json.NewEncoder(os.Stdout)
	for s, sched := range scheds {
		var agg aggregate
		for _, j := range jobs[s*ns : (s+1)*ns] {
			if j.err != nil {
				fmt.Fprintf(os.Stderr, "%s seed %d: %v\n", j.sched, j.seed, j.err)
				os.Exit(1)
			}
			agg.add(j.base, j.chaos)
			violations += reportViolations(j.sched, j.seed, "baseline", j.base.Monitor, *jsonOut)
			violations += reportViolations(j.sched, j.seed, "chaos", j.chaos.Monitor, *jsonOut)
			if *jsonOut {
				if err := enc.Encode(record(j.sched, j.seed, "baseline", j.base)); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if err := enc.Encode(record(j.sched, j.seed, "chaos", j.chaos)); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			} else if *verbose {
				fmt.Printf("  %-6s seed %-3d baseline FCT %-12v chaos FCT %-12v rlf=%d abandoned=%d events=%d\n",
					j.sched, j.seed, j.base.MeanFCT(), j.chaos.MeanFCT(),
					j.chaos.Stats.Reestablishments, j.chaos.Stats.AMAbandoned, len(j.chaos.Plan))
			}
		}
		if !*jsonOut {
			agg.print(string(sched), *seeds)
		}
	}

	if violations > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d invariant violation(s)\n", violations)
		os.Exit(1)
	}
	if !*jsonOut {
		fmt.Println("\nall invariants held")
	}
}

func runOne(sched ran.SchedulerKind, mode ran.RLCMode, spec workload.Spec, ues, rbs int, dur sim.Time, load, intensity float64, seed uint64) (fault.Result, error) {
	cfg := ran.DefaultLTEConfig().
		WithTopology(ues, rbs).
		ForScheduler(sched)
	cfg.RLC = mode
	return fault.Run(fault.RunConfig{
		Cell:      cfg,
		Workload:  spec,
		Load:      load,
		Duration:  dur,
		Intensity: intensity,
		Seed:      seed,
	})
}

func reportViolations(sched ran.SchedulerKind, seed uint64, phase string, rep fault.Report, jsonOut bool) int {
	if rep.Clean() {
		return 0
	}
	out := os.Stdout
	if jsonOut {
		out = os.Stderr // keep stdout parseable
	}
	fmt.Fprintf(out, "  %s seed %d (%s): %d VIOLATION(S)\n", sched, seed, phase, rep.Violated)
	for _, v := range rep.Violations {
		fmt.Fprintf(out, "    %v\n", v)
	}
	return int(rep.Violated)
}

// aggregate accumulates the sweep's per-seed results.
type aggregate struct {
	baseFCT, chaosFCT     sim.Time
	baseFlows, chaosFlows int
	rlfs, abandoned       uint64
	cqiDrops, harqFlips   uint64
	pduDrops, bhDrops     uint64
	checks, deliveries    uint64
}

func (a *aggregate) add(base, chaos fault.Result) {
	a.baseFCT += base.MeanFCT()
	a.chaosFCT += chaos.MeanFCT()
	a.baseFlows += len(base.Samples)
	a.chaosFlows += len(chaos.Samples)
	a.rlfs += chaos.Stats.Reestablishments
	a.abandoned += chaos.Stats.AMAbandoned
	a.cqiDrops += chaos.Injector.CQIDropped
	a.harqFlips += chaos.Injector.HARQFlipped
	a.pduDrops += chaos.Injector.PDUsDropped
	a.bhDrops += chaos.Injector.BackhaulDropped
	a.checks += base.Monitor.Checks + chaos.Monitor.Checks
	a.deliveries += base.Monitor.Deliveries + chaos.Monitor.Deliveries
}

func (a *aggregate) print(name string, seeds int) {
	n := sim.Time(seeds)
	baseline, chaos := a.baseFCT/n, a.chaosFCT/n
	degr := 0.0
	if baseline > 0 {
		degr = 100 * (float64(chaos)/float64(baseline) - 1)
	}
	fmt.Printf("%-7s mean FCT %v -> %v (%+.1f%%), flows %d -> %d\n",
		name, baseline, chaos, degr, a.baseFlows, a.chaosFlows)
	fmt.Printf("        faults: rlf=%d amAbandoned=%d cqiDrops=%d harqFlips=%d pduDrops=%d backhaulDrops=%d\n",
		a.rlfs, a.abandoned, a.cqiDrops, a.harqFlips, a.pduDrops, a.bhDrops)
	fmt.Printf("        monitor: %d TTI checks, %d deliveries observed\n\n", a.checks, a.deliveries)
}
