// Command outran-trace analyzes JSONL event traces written by the
// simulator's tracing layer (internal/obs, enabled with
// outran-sim -trace).
//
// Usage:
//
//	outran-trace summary <trace.jsonl>          run overview + event counts
//	outran-trace audit   <trace.jsonl>          per-TTI scheduler decision audit
//	outran-trace flow    <trace.jsonl> <flow>   one flow's full timeline
//	outran-trace slow    <trace.jsonl> [n]      n slowest flows with per-layer residency
//	outran-trace kpi     <kpi.jsonl>            KPI time-series report (outran-sim -kpi)
//
// The audit subcommand replays the trace's decision records into the
// §5.4 numbers: the override rate (how often ε-relaxation picked a
// different user than the legacy metric) and the mean relative metric
// sacrifice per decision, plus the spectral-efficiency and fairness
// aggregates recomputed from the trace's tracker samples — which match
// the live run's end-of-run stats exactly.
package main

import (
	"fmt"
	"os"
	"strconv"

	"outran/internal/obs"
	"outran/internal/sim"
)

func main() {
	if len(os.Args) < 3 {
		usage()
		os.Exit(2)
	}
	cmd, path := os.Args[1], os.Args[2]
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	// The KPI stream is its own JSONL schema, not an event trace —
	// branch before the trace decoder sees it.
	if cmd == "kpi" {
		recs, err := obs.ReadKPI(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		kpi(recs)
		return
	}
	events, err := obs.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	switch cmd {
	case "summary":
		summary(events)
	case "audit":
		audit(events)
	case "flow":
		if len(os.Args) < 4 {
			usage()
			os.Exit(2)
		}
		flow(events, os.Args[3])
	case "slow":
		n := 10
		if len(os.Args) >= 4 {
			if v, err := strconv.Atoi(os.Args[3]); err == nil && v > 0 {
				n = v
			}
		}
		slow(events, n)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: outran-trace <summary|audit|flow|slow> <trace.jsonl> [arg]
  summary <trace>         run overview and event counts
  audit   <trace>         scheduler decision audit (§5.4 SE cost)
  flow    <trace> <flow>  one flow's timeline ("src:port>dst:port/proto")
  slow    <trace> [n]     n slowest flows with per-layer residency
  kpi     <kpi.jsonl>     KPI time-series report (written by outran-sim -kpi)`)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func printMeta(events []obs.Event) {
	meta, err := obs.FindMeta(events)
	if err != nil {
		fmt.Println("run            (no meta event in trace)")
		return
	}
	fmt.Printf("run            %s, %d UEs, %d RBs, seed %d, TTI %v, sample period %d TTIs\n",
		meta.Sched, meta.UEs, meta.RBs, meta.Seed, meta.TTINanos, meta.SamplePeriod)
}

func summary(events []obs.Event) {
	printMeta(events)
	tl := obs.Timelines(events)
	completed := 0
	var res obs.Residency
	withRes := 0
	for _, f := range tl {
		if f.End >= 0 {
			completed++
		}
		if r, ok := f.Residency(); ok {
			res.Ingress += r.Ingress
			res.Air += r.Air
			res.Drain += r.Drain
			withRes++
		}
	}
	fmt.Printf("flows          %d seen, %d completed\n", len(tl), completed)
	printCheckpoints(events)
	if withRes > 0 {
		n := sim.Time(withRes)
		fmt.Printf("residency      ingress %v  air %v  drain %v (mean over %d flows)\n",
			res.Ingress/n, res.Air/n, res.Drain/n, withRes)
	}
	fmt.Println("events:")
	for _, tc := range obs.CountByType(events) {
		fmt.Printf("  %-14s %d\n", tc.Type, tc.Count)
	}
}

// printCheckpoints summarises the run's checkpoint writes: cadence,
// final write count and last snapshot size (see deploy.Checkpointer).
func printCheckpoints(events []obs.Event) {
	var n int64
	var lastSize int64
	var firstT, lastT sim.Time
	for _, ev := range events {
		if ev.Type != obs.EvCheckpoint {
			continue
		}
		if ev.Sent > n {
			n = ev.Sent
		}
		lastSize = ev.Size
		if firstT == 0 {
			firstT = ev.T
		}
		lastT = ev.T
	}
	if n == 0 {
		return
	}
	cadence := firstT
	if n > 1 {
		cadence = (lastT - firstT) / sim.Time(n-1)
	}
	fmt.Printf("checkpoints    %d written, every %v, last snapshot %d bytes\n", n, cadence, lastSize)
}

func audit(events []obs.Event) {
	printMeta(events)
	a := obs.ComputeAudit(events)
	fmt.Printf("ttis           %d (%d RB allocations, %d used RB-TTIs, %d served bits)\n",
		a.TTIs, a.AllocRBs, a.UsedRBs, a.ServedBits)
	if a.Decisions == 0 {
		fmt.Println("decisions      none (not an ε-relaxation scheduler, or tracing started late)")
	} else {
		fmt.Printf("decisions      %d records, %d overrides (%.2f%%), mean candidate set %.2f\n",
			a.Decisions, a.Overrides,
			100*float64(a.Overrides)/float64(a.Decisions), a.CandMean)
		fmt.Printf("SE sacrifice   %.6f mean relative metric loss per decision (§5.4)\n", a.SacrificeMean)
		fmt.Printf("override lvls  %v (by winning MLFQ level)\n", a.OverridesByLevel)
	}
	fmt.Printf("spectral eff   %.6f bit/s/Hz over %d samples (trace replay)\n", a.MeanSE, a.Samples)
	fmt.Printf("fairness       %.6f (Jain, trace replay)\n", a.MeanFairness)
	if a.MeanActiveSE > 0 {
		fmt.Printf("active SE      %.6f bit/s/Hz over used RBs\n", a.MeanActiveSE)
	}
}

func flow(events []obs.Event, id string) {
	for _, f := range obs.Timelines(events) {
		if f.Flow != id {
			continue
		}
		fmt.Printf("flow %s  ue=%d size=%d\n", f.Flow, f.UE, f.Size)
		if f.End >= 0 {
			fmt.Printf("  completed in %v", f.FCT)
			if r, ok := f.Residency(); ok {
				fmt.Printf("  (ingress %v, air %v, drain %v)", r.Ingress, r.Air, r.Drain)
			}
			fmt.Println()
		} else {
			fmt.Println("  incomplete within trace")
		}
		for _, ev := range f.Events {
			fmt.Printf("  %12v  %-10s", ev.T, ev.Type)
			switch ev.Type {
			case obs.EvMLFQ:
				fmt.Printf(" level=%d sent=%d threshold=%d", ev.Level, ev.Sent, ev.Threshold)
			case obs.EvPDCPSN, obs.EvDeliver:
				fmt.Printf(" sn=%d", ev.SN)
			case obs.EvFlowEnd:
				fmt.Printf(" fct=%v", ev.FCT)
			}
			fmt.Println()
		}
		return
	}
	fatal(fmt.Errorf("flow %q not in trace", id))
}

func slow(events []obs.Event, n int) {
	tl := obs.SlowestFlows(obs.Timelines(events), n)
	if len(tl) == 0 {
		fmt.Println("no completed flows in trace")
		return
	}
	fmt.Printf("%-40s %6s %12s %12s %12s %12s %5s\n",
		"flow", "ue", "fct", "ingress", "air", "drain", "level")
	for _, f := range tl {
		r, ok := f.Residency()
		if !ok {
			fmt.Printf("%-40s %6d %12v %12s %12s %12s %5d\n",
				f.Flow, f.UE, f.FCT, "-", "-", "-", f.FinalLevel)
			continue
		}
		fmt.Printf("%-40s %6d %12v %12v %12v %12v %5d\n",
			f.Flow, f.UE, f.FCT, r.Ingress, r.Air, r.Drain, f.FinalLevel)
	}
}
