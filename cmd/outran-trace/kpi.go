package main

import (
	"fmt"
	"sort"

	"outran/internal/obs"
)

// kpi renders the KPI time-series report: the final per-cell state,
// the deployment (or single-cell) series over time, and the worst
// cells ranked by cumulative tail FCT. The stream interleaves cells at
// each instant, so the records are first split by cell index.
func kpi(recs []obs.KPIRecord) {
	if len(recs) == 0 {
		fmt.Println("kpi stream: no records")
		return
	}
	byCell := map[int][]obs.KPIRecord{}
	for _, r := range recs {
		byCell[r.Cell] = append(byCell[r.Cell], r)
	}
	rollup := byCell[obs.RollupCell]
	delete(byCell, obs.RollupCell)
	cells := make([]int, 0, len(byCell))
	for c := range byCell {
		cells = append(cells, c)
	}
	sort.Ints(cells)

	first, last := recs[0].T, recs[len(recs)-1].T
	fmt.Printf("kpi stream     %d records, %d cells, %d instants, %.1fs..%.1fs\n",
		len(recs), len(cells), len(byCell[cells[0]]), first.Seconds(), last.Seconds())

	fmt.Println("\nfinal state (cumulative over the run)")
	fmt.Printf("  %4s %9s %11s %11s %7s %7s %7s %9s %6s %9s\n",
		"cell", "flows", "p50 ms", "p99 ms", "se", "fair", "active", "queue B", "retx", "sacrifice")
	for _, c := range cells {
		s := byCell[c]
		r := s[len(s)-1]
		fmt.Printf("  %4d %9d %11.2f %11.2f %7.3f %7.3f %7d %9d %5.1f%% %9.5f\n",
			c, r.CumFlows, r.CumP50Ms, r.CumP99Ms, r.SE, r.Fairness,
			r.ActiveFlows, sumQueue(r), 100*r.HARQRetxRate, r.Sacrifice)
	}

	// The over-time series: the deployment roll-up when present, else
	// the single cell's own records.
	series := rollup
	label := "deployment roll-up"
	if len(series) == 0 {
		series = byCell[cells[0]]
		label = fmt.Sprintf("cell %d", cells[0])
	}
	fmt.Printf("\nwindow series (%s)\n", label)
	fmt.Printf("  %8s %9s %11s %11s %7s %7s %7s %9s %6s\n",
		"t", "flows", "p50 ms", "p99 ms", "se", "fair", "active", "queue B", "retx")
	for _, r := range series {
		fmt.Printf("  %7.1fs %9d %11.2f %11.2f %7.3f %7.3f %7d %9d %5.1f%%\n",
			r.T.Seconds(), r.WinFlows, r.WinP50Ms, r.WinP99Ms, r.SE, r.Fairness,
			r.ActiveFlows, sumQueue(r), 100*r.HARQRetxRate)
	}

	if len(cells) > 1 {
		fmt.Println("\nworst cells by cumulative p99 FCT")
		rank := make([]obs.KPIRecord, 0, len(cells))
		for _, c := range cells {
			s := byCell[c]
			rank = append(rank, s[len(s)-1])
		}
		sort.Slice(rank, func(i, j int) bool {
			if rank[i].CumP99Ms != rank[j].CumP99Ms {
				return rank[i].CumP99Ms > rank[j].CumP99Ms
			}
			return rank[i].Cell < rank[j].Cell
		})
		n := len(rank)
		if n > 5 {
			n = 5
		}
		for i := 0; i < n; i++ {
			r := rank[i]
			fmt.Printf("  #%d cell %-3d p99 %9.2fms  p50 %9.2fms  fair %.3f  retx %.1f%%\n",
				i+1, r.Cell, r.CumP99Ms, r.CumP50Ms, r.Fairness, 100*r.HARQRetxRate)
		}
	}
}

// sumQueue folds the per-priority RLC backlog into one byte count.
func sumQueue(r obs.KPIRecord) int64 {
	var total int64
	for _, b := range r.QueueBytes {
		total += b
	}
	return total
}
