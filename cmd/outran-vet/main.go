// Command outran-vet runs the repository's determinism and hot-path
// contract analyzer suite (internal/analysis) over the module:
//
//	go run ./cmd/outran-vet ./...
//
// It prints one line per finding and exits 1 when anything is flagged,
// 0 on a clean tree — the contract the CI gate relies on. Arguments
// are accepted for `go vet`-style invocation symmetry, but the suite
// always analyzes the whole module enclosing the working directory:
// determinism and allocation discipline are whole-program properties.
//
// Beyond the AST passes, outran-vet drives the compiler's own escape
// analysis over every `//outran:allocfree` function (disable with
// -escape=false when a toolchain is unavailable), and polices the
// `//outran:` directive inventory against a committed baseline:
//
//	go run ./cmd/outran-vet -json report.json ./...
//	go run ./cmd/outran-vet -baseline VET_BASELINE.json ./...
//	go run ./cmd/outran-vet -write-baseline VET_BASELINE.json
//
// The baseline pins which files carry which justifications and
// annotations; adding a suppression anywhere fails the gate until the
// baseline is regenerated and the diff reviewed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"outran/internal/analysis"
)

// report is the machine-readable -json output: what ran, what it
// found, and the directive inventory it observed.
type report struct {
	Analyzers  []analyzerInfo            `json:"analyzers"`
	Findings   []findingJSON             `json:"findings"`
	Directives map[string]map[string]int `json:"directives"`
	Baseline   *baselineResult           `json:"baseline,omitempty"`
}

type analyzerInfo struct {
	Name      string `json:"name"`
	Doc       string `json:"doc"`
	Directive string `json:"directive,omitempty"`
}

type findingJSON struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

type baselineResult struct {
	Path  string   `json:"path"`
	Match bool     `json:"match"`
	Diffs []string `json:"diffs,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	escape := flag.Bool("escape", true, "run the compiler escape-analysis check over //outran:allocfree functions")
	jsonOut := flag.String("json", "", "write a machine-readable report to `file` ('-' for stdout)")
	baseline := flag.String("baseline", "", "compare the //outran: directive inventory against baseline `file`")
	writeBaseline := flag.String("write-baseline", "", "regenerate baseline `file` from the tree and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: outran-vet [-list] [-escape=false] [-json file] [-baseline file] [-write-baseline file] [./...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", "escape", "drives go build -gcflags='-m -l' over //outran:allocfree functions (disable with -escape=false)")
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analysis.LoadModule(wd)
	if err != nil {
		fatal(err)
	}
	inventory := analysis.DirectiveInventory(wd, pkgs)

	if *writeBaseline != "" {
		data, err := json.MarshalIndent(inventory, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*writeBaseline, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "outran-vet: wrote %s (%d files with directives)\n", *writeBaseline, len(inventory))
		return
	}

	findings := analysis.RunAnalyzers(pkgs, analyzers)
	if *escape {
		ef, err := analysis.RunEscapeCheck(wd, pkgs)
		if err != nil {
			fatal(err)
		}
		findings = append(findings, ef...)
	}

	var blResult *baselineResult
	if *baseline != "" {
		blResult = compareBaseline(*baseline, inventory)
	}

	rep := report{Directives: inventory}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, analyzerInfo{Name: a.Name, Doc: a.Doc, Directive: a.Directive})
	}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, findingJSON{
			Analyzer: f.Analyzer,
			File:     relPath(wd, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	rep.Baseline = blResult

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
	}

	for _, f := range rep.Findings {
		fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
	}
	fail := false
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "outran-vet: %d finding(s)\n", len(findings))
		fail = true
	}
	if blResult != nil && !blResult.Match {
		for _, d := range blResult.Diffs {
			fmt.Fprintln(os.Stderr, "outran-vet: baseline:", d)
		}
		fmt.Fprintf(os.Stderr, "outran-vet: directive inventory differs from %s; review and regenerate with -write-baseline\n", *baseline)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// compareBaseline diffs the observed inventory against the committed
// baseline, reporting per-file per-directive count changes.
func compareBaseline(path string, got map[string]map[string]int) *baselineResult {
	res := &baselineResult{Path: path, Match: true}
	data, err := os.ReadFile(path)
	if err != nil {
		res.Match = false
		res.Diffs = []string{fmt.Sprintf("cannot read baseline: %v", err)}
		return res
	}
	var want map[string]map[string]int
	if err := json.Unmarshal(data, &want); err != nil {
		res.Match = false
		res.Diffs = []string{fmt.Sprintf("cannot parse baseline: %v", err)}
		return res
	}
	files := map[string]bool{}
	for f := range got {
		files[f] = true
	}
	for f := range want {
		files[f] = true
	}
	var sortedFiles []string
	for f := range files {
		sortedFiles = append(sortedFiles, f)
	}
	sort.Strings(sortedFiles)
	for _, f := range sortedFiles {
		names := map[string]bool{}
		for n := range got[f] {
			names[n] = true
		}
		for n := range want[f] {
			names[n] = true
		}
		var sortedNames []string
		for n := range names {
			sortedNames = append(sortedNames, n)
		}
		sort.Strings(sortedNames)
		for _, n := range sortedNames {
			g, w := got[f][n], want[f][n]
			if g != w {
				res.Match = false
				res.Diffs = append(res.Diffs, fmt.Sprintf("%s: //outran:%s count %d, baseline has %d", f, n, g, w))
			}
		}
	}
	return res
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil {
		return filepath.ToSlash(rel)
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "outran-vet:", err)
	os.Exit(2)
}
