// Command outran-vet runs the repository's determinism and
// correctness analyzer suite (internal/analysis) over the module:
//
//	go run ./cmd/outran-vet ./...
//
// It prints one line per finding and exits 1 when anything is flagged,
// 0 on a clean tree — the contract the CI gate relies on. Arguments
// are accepted for `go vet`-style invocation symmetry, but the suite
// always analyzes the whole module enclosing the working directory:
// determinism is a whole-program property.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"outran/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: outran-vet [-list] [./...]")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "outran-vet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "outran-vet:", err)
		os.Exit(2)
	}
	findings := analysis.RunAnalyzers(pkgs, analyzers)
	for _, f := range findings {
		// Print module-relative paths: stable across machines and
		// clickable from the repo root.
		if rel, rerr := filepath.Rel(wd, f.Pos.Filename); rerr == nil {
			f.Pos.Filename = rel
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "outran-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
