// Incast: the §6.3 worst case — synchronized bursts of 8 KB flows
// land on a loaded cell, and OutRAN's strict priorities squeeze the
// long flows. Demonstrates the "priority reset" safety valve: a 500 ms
// reset keeps the short-flow win while giving long flows back their
// PF-level completion times.
package main

import (
	"fmt"
	"log"

	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

func run(sched ran.SchedulerKind, reset sim.Time) (*ran.Cell, error) {
	cfg := ran.DefaultLTEConfig()
	cfg.NumUEs = 12
	cfg.Grid.NumRB = 50
	cfg.Scheduler = sched
	cfg.OutRAN.ResetPeriod = reset
	cfg.Seed = 5
	cell, err := ran.NewCell(cfg)
	if err != nil {
		return nil, err
	}
	const dur = 5 * sim.Second
	const load = 0.8
	base, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.LTECellular(),
		NumUEs:          cfg.NumUEs,
		Load:            load * 0.9,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(17))
	if err != nil {
		return nil, err
	}
	bursts, err := workload.Incast(workload.IncastConfig{
		FlowSize:       8 * 1024,
		VolumeFraction: 0.1,
		BurstSize:      12,
		BaseLoadBps:    load * cell.EffectiveCapacityBps(),
		NumUEs:         cfg.NumUEs,
		Duration:       dur,
	}, rng.New(19))
	if err != nil {
		return nil, err
	}
	cell.ScheduleSource(workload.MergeSources(base, bursts), 0, dur)
	cell.Run(dur + 15*sim.Second)
	return cell, nil
}

func main() {
	variants := []struct {
		name  string
		sched ran.SchedulerKind
		reset sim.Time
	}{
		{"PF (legacy)", ran.SchedPF, 0},
		{"OutRAN, no reset", ran.SchedOutRAN, 0},
		{"OutRAN, reset 500ms", ran.SchedOutRAN, 500 * sim.Millisecond},
	}
	fmt.Println("Incast bursts (8 KB x12, 10% of volume) on an 80%-loaded cell:")
	for _, v := range variants {
		cell, err := run(v.sched, v.reset)
		if err != nil {
			log.Fatal(err)
		}
		short := cell.FCT.IncastStats()
		long := cell.FCT.ByClass(metrics.Long)
		fmt.Printf("%-22s incast-flow FCT: mean %7.1fms p95 %7.1fms | long-flow mean %8.1fms\n",
			v.name, short.Mean.Milliseconds(), short.P95.Milliseconds(), long.Mean.Milliseconds())
	}
}
