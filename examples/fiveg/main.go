// Fiveg: the §6.2 "Impact in 5G" scenario — a gNodeB sweeping NR
// numerologies (slot lengths 1 ms down to 125 µs) with an edge (MEC)
// server, under the MIRAGE mobile-app workload. Shows the paper's
// point: faster slots and closer servers shrink the RTT, but under
// load the queueing delay at the gNodeB remains, and OutRAN is what
// removes it for short flows.
package main

import (
	"fmt"
	"log"

	"outran/internal/metrics"
	"outran/internal/phy"
	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

func run(mu phy.Numerology, sched ran.SchedulerKind) (*ran.Cell, error) {
	cfg := ran.Default5GConfig(mu)
	cfg.NumUEs = 16
	cfg.Grid.NumRB = cfg.Grid.NumRB / 4 // keep the demo quick
	cfg.Scheduler = sched
	cfg.Seed = 9
	cfg.Path.WiredDelay = 5 * sim.Millisecond // MEC
	cfg.Path.UplinkDelay = 9 * sim.Millisecond
	cell, err := ran.NewCell(cfg)
	if err != nil {
		return nil, err
	}
	const dur = 4 * sim.Second
	flows, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.Mirage(),
		NumUEs:          cfg.NumUEs,
		Load:            0.6,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(13))
	if err != nil {
		return nil, err
	}
	cell.ScheduleSource(flows, 0, dur)
	cell.Run(dur + 10*sim.Second)
	return cell, nil
}

func main() {
	fmt.Println("5G gNodeB + MEC server, MIRAGE workload, load 0.6:")
	fmt.Printf("%-28s %10s %12s %12s %12s\n", "numerology", "sched", "RTT (ms)", "S qdelay", "S p95 FCT")
	for mu := phy.Mu0; mu <= phy.Mu3; mu++ {
		for _, sched := range []ran.SchedulerKind{ran.SchedPF, ran.SchedOutRAN} {
			cell, err := run(mu, sched)
			if err != nil {
				log.Fatal(err)
			}
			st := cell.CollectStats()
			fmt.Printf("%-28s %10s %9.1fms %9.2fms %9.1fms\n",
				mu.String(), sched,
				st.MeanSRTT.Milliseconds(),
				cell.Delay.MeanShort().Milliseconds(),
				cell.FCT.ByClass(metrics.Short).P95.Milliseconds())
		}
	}
	fmt.Println("\nNote how the RTT drops with higher numerology while the short-flow")
	fmt.Println("queueing delay persists under PF — and disappears under OutRAN (§6.2).")
}
