// Quickstart: build a small LTE cell, offer the paper's heavy-tailed
// cellular workload, and compare the legacy Proportional Fair
// scheduler against OutRAN on flow completion time, spectral
// efficiency, and fairness — the paper's headline result in ~40 lines
// of API use.
package main

import (
	"fmt"
	"log"

	"outran/internal/metrics"
	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/workload"
)

func run(sched ran.SchedulerKind) (*ran.Cell, error) {
	cfg := ran.DefaultLTEConfig() // pedestrian channel; trimmed to 50 RB (10 MHz) below
	cfg.NumUEs = 16
	cfg.Grid.NumRB = 50
	cfg.Scheduler = sched
	cfg.Seed = 42
	cell, err := ran.NewCell(cfg)
	if err != nil {
		return nil, err
	}
	const dur = 6 * sim.Second
	flows, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.LTECellular(), // Huang et al. flow sizes
		NumUEs:          cfg.NumUEs,
		Load:            0.7,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(7))
	if err != nil {
		return nil, err
	}
	cell.ScheduleSource(flows, 0, dur)
	cell.Eng.At(dur, cell.Tracker.Freeze) // measure SE/fairness over the loaded window
	cell.Run(dur + 12*sim.Second)         // drain
	return cell, nil
}

func main() {
	pf, err := run(ran.SchedPF)
	if err != nil {
		log.Fatal(err)
	}
	outran, err := run(ran.SchedOutRAN)
	if err != nil {
		log.Fatal(err)
	}
	show := func(name string, c *ran.Cell) {
		st := c.CollectStats()
		s := c.FCT.ByClass(metrics.Short)
		fmt.Printf("%-22s short FCT: mean %6.1fms  p95 %6.1fms | overall %6.1fms | SE %.2f | fairness %.2f\n",
			name, s.Mean.Milliseconds(), s.P95.Milliseconds(),
			c.FCT.Overall().Mean.Milliseconds(), st.MeanSpectralEff, st.MeanFairnessIndex)
	}
	fmt.Println("LTE cell, 16 UEs, 10 MHz, load 0.7, heavy-tailed cellular workload:")
	show("PF (legacy)", pf)
	show(outran.Scheduler().Name(), outran)

	ps := pf.FCT.ByClass(metrics.Short)
	os := outran.FCT.ByClass(metrics.Short)
	if ps.P95 > 0 {
		fmt.Printf("\nOutRAN short-flow p95 improvement: %.0f%%\n",
			(1-float64(os.P95)/float64(ps.P95))*100)
	}
}
