// Webbrowsing: the paper's motivating scenario (§6.1) — a phone loads
// web pages while other UEs pull heavy background transfers through
// the same base station. Page loads are modelled from the paper's
// Table 2 flow statistics, including QUIC sub-flows that reuse one
// persistent connection (the §4.2 limitation). Compares page load
// times under PF vs OutRAN.
package main

import (
	"fmt"
	"log"

	"outran/internal/ran"
	"outran/internal/rng"
	"outran/internal/sim"
	"outran/internal/webpage"
	"outran/internal/workload"
)

func loadPages(sched ran.SchedulerKind, pages []webpage.Page) (map[string]sim.Time, error) {
	cfg := ran.DefaultLTEConfig()
	cfg.NumUEs = 4 // like the paper's four phones
	cfg.Grid.NumRB = 50
	cfg.Scheduler = sched
	cfg.Seed = 3
	cell, err := ran.NewCell(cfg)
	if err != nil {
		return nil, err
	}
	dur := sim.Time(len(pages)+2) * 3 * sim.Second
	bg, err := workload.Poisson(workload.PoissonConfig{
		Dist:            workload.WebSearch(), // bulky background, mean ~1.92 MB
		NumUEs:          cfg.NumUEs,
		Load:            0.6,
		CellCapacityBps: cell.EffectiveCapacityBps(),
		Duration:        dur,
	}, rng.New(11))
	if err != nil {
		return nil, err
	}
	// An empty record window keeps the background flows out of the FCT
	// recorder; only the page loads below are measured.
	cell.ScheduleSource(bg, 0, 0)

	plts := make(map[string]sim.Time)
	r := rng.New(23)
	for i, p := range pages {
		p := p
		cell.Eng.At(sim.Time(i+1)*3*sim.Second, func() {
			err := webpage.Load(cell, 0, p, r, func(res webpage.LoadResult) {
				plts[p.Name] = res.PLT
			})
			if err != nil {
				panic(err)
			}
		})
	}
	cell.Run(dur + 20*sim.Second)
	return plts, nil
}

func main() {
	pages := webpage.Catalogue()[:8]
	pf, err := loadPages(ran.SchedPF, pages)
	if err != nil {
		log.Fatal(err)
	}
	or, err := loadPages(ran.SchedOutRAN, pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Page load times with competing background transfers:")
	fmt.Printf("%-18s %12s %12s %8s\n", "page", "PF (ms)", "OutRAN (ms)", "gain")
	for _, p := range pages {
		a, b := pf[p.Name], or[p.Name]
		if a == 0 || b == 0 {
			fmt.Printf("%-18s page load did not finish in time\n", p.Name)
			continue
		}
		fmt.Printf("%-18s %12.0f %12.0f %7.1f%%\n",
			p.Name, a.Milliseconds(), b.Milliseconds(), (1-float64(b)/float64(a))*100)
	}
}
